type error = { position : int; message : string }

let pp_error ppf e = Format.fprintf ppf "parse error at %d: %s" e.position e.message

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)
(* ------------------------------------------------------------------ *)

type token =
  | Tident of string
  | Tint of int
  | Tstring of string
  | Tstar
  | Tcomma
  | Tlparen
  | Trparen
  | Teq
  | Tplus
  | Tminus
  | Tsemi
  | Teof

let token_name = function
  | Tident s -> Printf.sprintf "identifier %S" s
  | Tint i -> Printf.sprintf "integer %d" i
  | Tstring s -> Printf.sprintf "string '%s'" s
  | Tstar -> "'*'"
  | Tcomma -> "','"
  | Tlparen -> "'('"
  | Trparen -> "')'"
  | Teq -> "'='"
  | Tplus -> "'+'"
  | Tminus -> "'-'"
  | Tsemi -> "';'"
  | Teof -> "end of input"

exception Error of error

let fail position fmt = Printf.ksprintf (fun message -> raise (Error { position; message })) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '-'

let is_digit c = c >= '0' && c <= '9'

(* Tokens tagged with their starting offset, for error reporting. *)
let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit pos tok = tokens := (pos, tok) :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      emit pos (Tident (String.sub src !i (!j - !i)));
      i := !j
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do
        incr j
      done;
      emit pos (Tint (int_of_string (String.sub src !i (!j - !i))));
      i := !j
    end
    else if c = '\'' then begin
      let j = ref (!i + 1) in
      while !j < n && src.[!j] <> '\'' do
        incr j
      done;
      if !j >= n then fail pos "unterminated string literal";
      emit pos (Tstring (String.sub src (!i + 1) (!j - !i - 1)));
      i := !j + 1
    end
    else begin
      (match c with
      | '*' -> emit pos Tstar
      | ',' -> emit pos Tcomma
      | '(' -> emit pos Tlparen
      | ')' -> emit pos Trparen
      | '=' -> emit pos Teq
      | '+' -> emit pos Tplus
      | '-' -> emit pos Tminus
      | ';' -> emit pos Tsemi
      | other -> fail pos "unexpected character %C" other);
      incr i
    end
  done;
  emit n Teof;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser                                            *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : (int * token) list }

let peek s = match s.toks with (p, t) :: _ -> (p, t) | [] -> (0, Teof)

let advance s = match s.toks with _ :: rest -> s.toks <- rest | [] -> ()

let next s =
  let r = peek s in
  advance s;
  r

let keyword_of = String.lowercase_ascii

let expect_keyword s kw =
  match next s with
  | _, Tident id when String.equal (keyword_of id) kw -> ()
  | p, t -> fail p "expected %s, found %s" (String.uppercase_ascii kw) (token_name t)

let expect s tok =
  match next s with
  | _, t when t = tok -> ()
  | p, t -> fail p "expected %s, found %s" (token_name tok) (token_name t)

let ident s =
  match next s with
  | _, Tident id -> id
  | p, t -> fail p "expected an identifier, found %s" (token_name t)

let literal s =
  match next s with
  | _, Tint i -> Ast.Int i
  | _, Tstring str -> Ast.Str str
  | p, Tminus -> (
    match next s with
    | _, Tint i -> Ast.Int (-i)
    | _, t -> fail p "expected an integer after '-', found %s" (token_name t))
  | p, t -> fail p "expected a literal, found %s" (token_name t)

(* WHERE id = 'k' *)
let where_id s =
  expect_keyword s "where";
  let col = ident s in
  if not (String.equal (keyword_of col) "id") then
    fail 0 "only primary-key lookups are supported (WHERE id = ...), got column %S" col;
  expect s Teq;
  match next s with
  | _, Tstring id -> id
  | _, Tint i -> string_of_int i
  | p, t -> fail p "expected a key literal, found %s" (token_name t)

(* attr = literal | attr = attr +/- int *)
let assignment s =
  let attr = ident s in
  expect s Teq;
  match peek s with
  | _, Tident id2 when String.equal id2 attr -> (
    advance s;
    let sign =
      match next s with
      | _, Tplus -> 1
      | _, Tminus -> -1
      | p, t -> fail p "expected '+' or '-' after %s, found %s" attr (token_name t)
    in
    match next s with
    | _, Tint d -> Ast.Add (attr, sign * d)
    | p, t -> fail p "expected an integer delta, found %s" (token_name t))
  | _, Tident other -> fail (fst (peek s)) "only 'attr = attr +/- n' arithmetic is supported, found %s" other
  | _ -> Ast.Set (attr, literal s)

let rec comma_separated s parse_one =
  let first = parse_one s in
  match peek s with
  | _, Tcomma ->
    advance s;
    first :: comma_separated s parse_one
  | _ -> [ first ]

let statement s =
  match next s with
  | p, Tident kw -> (
    match keyword_of kw with
    | "select" -> (
      expect s Tstar;
      expect_keyword s "from";
      let table = ident s in
      match peek s with
      | _, Tident kw when String.equal (keyword_of kw) "where" ->
        let id = where_id s in
        Ast.Select { table; id }
      | _ ->
        let order_by =
          match peek s with
          | _, Tident kw when String.equal (keyword_of kw) "order" ->
            advance s;
            expect_keyword s "by";
            Some (ident s)
          | _ -> None
        in
        let limit =
          match peek s with
          | _, Tident kw when String.equal (keyword_of kw) "limit" -> (
            advance s;
            match next s with
            | _, Tint n -> n
            | p, t -> fail p "expected an integer after LIMIT, found %s" (token_name t))
          | _ -> 50
        in
        Ast.Select_all { table; order_by; limit })
    | "insert" ->
      expect_keyword s "into";
      let table = ident s in
      expect s Tlparen;
      let columns = comma_separated s ident in
      expect s Trparen;
      expect_keyword s "values";
      expect s Tlparen;
      let values = comma_separated s literal in
      expect s Trparen;
      if List.length columns <> List.length values then
        fail p "INSERT has %d columns but %d values" (List.length columns)
          (List.length values);
      (match columns with
      | first :: _ when String.equal (keyword_of first) "id" -> ()
      | _ -> fail p "INSERT's first column must be the primary key 'id'");
      let id =
        match List.hd values with
        | Ast.Str sid -> sid
        | Ast.Int i -> string_of_int i
      in
      Ast.Insert { table; id; columns = List.tl (List.combine columns values) }
    | "update" ->
      let table = ident s in
      expect_keyword s "set";
      let assignments = comma_separated s assignment in
      let id = where_id s in
      Ast.Update { table; id; assignments }
    | "delete" ->
      expect_keyword s "from";
      let table = ident s in
      let id = where_id s in
      Ast.Delete { table; id }
    | "begin" -> Ast.Begin
    | "commit" -> Ast.Commit
    | other -> fail p "unknown statement %S" other)
  | p, t -> fail p "expected a statement, found %s" (token_name t)

let parse_statement src =
  try
    let s = { toks = tokenize src } in
    let stmt = statement s in
    (match peek s with
    | _, (Teof | Tsemi) -> ()
    | p, t -> fail p "trailing input: %s" (token_name t));
    Ok stmt
  with Error e -> Result.Error e

let parse_script src =
  try
    let s = { toks = tokenize src } in
    let rec loop acc =
      match peek s with
      | _, Teof -> List.rev acc
      | _, Tsemi ->
        advance s;
        loop acc
      | _ -> loop (statement s :: acc)
    in
    Ok (loop [])
  with Error e -> Result.Error e
