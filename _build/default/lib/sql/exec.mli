(** Executor: run SQL-like scripts on an MDCC session.

    Statements outside a [BEGIN]/[COMMIT] bracket auto-commit one at a time;
    a bracketed group becomes a single atomic MDCC transaction.  Reads go
    through the session (read-committed with session guarantees); writes are
    translated to the cheapest update kind —
    {ul
    {- [SET a = a - 2, b = b + 1] → a commutative delta option;}
    {- any absolute [SET a = 42] → read-modify-write: the executor reads
       the record and proposes a physical update with the read version
       (optimistic concurrency: a concurrent writer aborts the
       transaction);}
    {- [INSERT]/[DELETE] → insert and delete options.}}

    With [~serializable:true] every [SELECT]ed key also gets a read-guard
    option (§4.4), upgrading the whole script to serializability.

    A script that opens [BEGIN] but ends without [COMMIT] is committed
    implicitly at the end. *)

open Mdcc_storage

type row = { key : Key.t; value : Value.t option; version : int }
(** One [SELECT] result: [value = None] means the record does not exist. *)

type exec_result = {
  rows : row list;  (** all SELECT results, in statement order *)
  outcome : Txn.outcome;
      (** [Committed] iff every (sub-)transaction of the script committed;
          execution stops at the first abort *)
}

val run :
  ?serializable:bool ->
  Mdcc_core.Session.t ->
  txid:Txn.id ->
  Ast.statement list ->
  (exec_result -> unit) ->
  unit
(** Execute parsed statements.  [txid] seeds the transaction ids (sub-
    transactions get [txid ^ "-<n>"]).  Raises [Invalid_argument] if a
    bracketed group writes the same key with incompatible update kinds
    (deltas to the same key are merged). *)

val run_string :
  ?serializable:bool ->
  Mdcc_core.Session.t ->
  txid:Txn.id ->
  string ->
  ((exec_result, Parser.error) result -> unit) ->
  unit
(** Parse with {!Parser.parse_script}, then {!run}. *)
