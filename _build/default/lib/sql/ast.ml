type literal = Int of int | Str of string

type assignment = Set of string * literal | Add of string * int

type statement =
  | Select of { table : string; id : string }
  | Select_all of { table : string; order_by : string option; limit : int }
  | Insert of { table : string; id : string; columns : (string * literal) list }
  | Update of { table : string; id : string; assignments : assignment list }
  | Delete of { table : string; id : string }
  | Begin
  | Commit

let key_of ~table ~id = Mdcc_storage.Key.make ~table ~id

let is_commutative assignments =
  List.for_all (function Add _ -> true | Set _ -> false) assignments

let pp_literal ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Str s -> Format.fprintf ppf "'%s'" s

let pp_assignment ppf = function
  | Set (a, l) -> Format.fprintf ppf "%s = %a" a pp_literal l
  | Add (a, d) -> Format.fprintf ppf "%s = %s %s %d" a a (if d < 0 then "-" else "+") (abs d)

let pp_statement ppf = function
  | Select { table; id } -> Format.fprintf ppf "SELECT * FROM %s WHERE id = '%s'" table id
  | Select_all { table; order_by; limit } ->
    Format.fprintf ppf "SELECT * FROM %s%s LIMIT %d" table
      (match order_by with Some a -> " ORDER BY " ^ a | None -> "")
      limit
  | Insert { table; id; columns } ->
    Format.fprintf ppf "INSERT INTO %s (id%a) VALUES ('%s'%a)" table
      (Format.pp_print_list (fun ppf (c, _) -> Format.fprintf ppf ", %s" c))
      columns id
      (Format.pp_print_list (fun ppf (_, l) -> Format.fprintf ppf ", %a" pp_literal l))
      columns
  | Update { table; id; assignments } ->
    Format.fprintf ppf "UPDATE %s SET %a WHERE id = '%s'" table
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_assignment)
      assignments id
  | Delete { table; id } -> Format.fprintf ppf "DELETE FROM %s WHERE id = '%s'" table id
  | Begin -> Format.pp_print_string ppf "BEGIN"
  | Commit -> Format.pp_print_string ppf "COMMIT"
