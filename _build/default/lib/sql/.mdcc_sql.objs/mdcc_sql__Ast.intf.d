lib/sql/ast.mli: Format Mdcc_storage
