lib/sql/parser.ml: Ast Format List Printf Result String
