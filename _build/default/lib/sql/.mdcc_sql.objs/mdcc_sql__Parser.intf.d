lib/sql/parser.mli: Ast Format
