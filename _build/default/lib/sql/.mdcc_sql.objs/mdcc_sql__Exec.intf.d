lib/sql/exec.mli: Ast Key Mdcc_core Mdcc_storage Parser Txn Value
