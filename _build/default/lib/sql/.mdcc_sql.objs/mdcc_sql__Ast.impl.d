lib/sql/ast.ml: Format List Mdcc_storage
