lib/sql/exec.ml: Ast Key List Mdcc_core Mdcc_storage Parser Printf Txn Update Value
