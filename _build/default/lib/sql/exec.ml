open Mdcc_storage
module Session = Mdcc_core.Session

type row = { key : Key.t; value : Value.t option; version : int }

type exec_result = { rows : row list; outcome : Txn.outcome }

type state = {
  session : Session.t;
  txid : Txn.id;
  serializable : bool;
  mutable sub : int;  (* sub-transaction counter *)
  mutable in_txn : bool;
  mutable writes : (Key.t * Update.t) list;  (* buffered, reverse order *)
  mutable reads : (Key.t * int) list;  (* SELECTed keys for guards *)
  mutable rows : row list;  (* reverse order *)
}

let fresh_txid st =
  st.sub <- st.sub + 1;
  Printf.sprintf "%s-%d" st.txid st.sub

let value_of_columns columns =
  Value.of_list
    (List.map
       (fun (c, l) -> (c, match l with Ast.Int i -> Value.Int i | Ast.Str s -> Value.Str s))
       columns)

(* Merge an update into the buffered write-set: deltas to the same key
   combine; anything else on an already-written key is a script bug. *)
let buffer st key update =
  match List.assoc_opt key st.writes with
  | None -> st.writes <- (key, update) :: st.writes
  | Some (Update.Delta old) -> (
    match update with
    | Update.Delta more ->
      st.writes <-
        (key, Update.Delta (old @ more)) :: List.remove_assoc key st.writes
    | Update.Insert _ | Update.Physical _ | Update.Delete _ | Update.Read_guard _ ->
      invalid_arg "Sql.Exec: key updated twice with incompatible update kinds")
  | Some _ -> invalid_arg "Sql.Exec: key updated twice with incompatible update kinds"

let apply_assignments value assignments =
  List.fold_left
    (fun v -> function
      | Ast.Set (attr, Ast.Int i) -> Value.set v attr (Value.Int i)
      | Ast.Set (attr, Ast.Str s) -> Value.set v attr (Value.Str s)
      | Ast.Add (attr, d) -> Value.add_delta v attr d)
    value assignments

let guards_of st =
  if not st.serializable then []
  else
    (* Guard every read key that the write-set does not already certify. *)
    List.filter_map
      (fun (key, version) ->
        if List.mem_assoc key st.writes then None
        else Some (key, Update.Read_guard { vread = version }))
      (List.sort_uniq compare st.reads)

(* Submit the buffered write-set (plus read guards) as one transaction. *)
let flush st k =
  let updates = List.rev st.writes @ guards_of st in
  st.writes <- [];
  st.reads <- [];
  st.in_txn <- false;
  if updates = [] then k Txn.Committed
  else Session.submit st.session (Txn.make ~id:(fresh_txid st) ~updates) k

let rec step st statements finish =
  match statements with
  | [] ->
    (* Implicit COMMIT at end of script. *)
    if st.writes <> [] || st.reads <> [] then
      flush st (fun outcome -> finish { rows = List.rev st.rows; outcome })
    else finish { rows = List.rev st.rows; outcome = Txn.Committed }
  | stmt :: rest -> (
    let continue_or_abort outcome =
      match outcome with
      | Txn.Committed -> step st rest finish
      | Txn.Aborted _ -> finish { rows = List.rev st.rows; outcome }
    in
    (* Buffer a write, auto-committing when outside BEGIN/COMMIT. *)
    let write key update =
      buffer st key update;
      if st.in_txn then step st rest finish else flush st continue_or_abort
    in
    match stmt with
    | Ast.Begin ->
      st.in_txn <- true;
      step st rest finish
    | Ast.Commit -> flush st continue_or_abort
    | Ast.Select_all { table; order_by; limit } ->
      Session.scan st.session ~table ?order_by ~limit (fun results ->
          (* [st.rows] is kept reversed and flipped once at the end, so
             prepend the scan rows in their returned order. *)
          List.iter
            (fun (key, value, version) ->
              st.rows <- { key; value = Some value; version } :: st.rows)
            results;
          (* Scans are not certified (no per-row guard): analytic reads. *)
          step st rest finish)
    | Ast.Select { table; id } ->
      let key = Ast.key_of ~table ~id in
      Session.read st.session key (fun result ->
          let value, version =
            match result with Some (v, ver) -> (Some v, ver) | None -> (None, 0)
          in
          st.rows <- { key; value; version } :: st.rows;
          st.reads <- (key, version) :: st.reads;
          if st.in_txn then step st rest finish
          else begin
            (* Auto-commit SELECT: with serializability on, certify it. *)
            if st.serializable then flush st continue_or_abort
            else begin
              st.reads <- [];
              step st rest finish
            end
          end)
    | Ast.Insert { table; id; columns } ->
      write (Ast.key_of ~table ~id) (Update.Insert (value_of_columns columns))
    | Ast.Delete { table; id } ->
      let key = Ast.key_of ~table ~id in
      Session.read st.session key (fun result ->
          match result with
          | Some (_, version) -> write key (Update.Delete { vread = version })
          | None ->
            (* Deleting a missing record: propose an impossible delete so
               the outcome is a clean conflict abort. *)
            write key (Update.Delete { vread = -1 }))
    | Ast.Update { table; id; assignments } ->
      let key = Ast.key_of ~table ~id in
      if Ast.is_commutative assignments then
        write key
          (Update.Delta
             (List.filter_map
                (function Ast.Add (attr, d) -> Some (attr, d) | Ast.Set _ -> None)
                assignments))
      else
        (* Absolute assignment: optimistic read-modify-write. *)
        Session.read st.session key (fun result ->
            match result with
            | Some (value, version) ->
              write key
                (Update.Physical
                   { vread = version; value = apply_assignments value assignments })
            | None -> write key (Update.Physical { vread = -1; value = Value.empty })))

let run ?(serializable = false) session ~txid statements finish =
  let st =
    { session; txid; serializable; sub = 0; in_txn = false; writes = []; reads = []; rows = [] }
  in
  step st statements finish

let run_string ?serializable session ~txid src finish =
  match Parser.parse_script src with
  | Ok statements -> run ?serializable session ~txid statements (fun r -> finish (Ok r))
  | Error e -> finish (Error e)
