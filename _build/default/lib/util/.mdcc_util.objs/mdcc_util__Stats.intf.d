lib/util/stats.mli:
