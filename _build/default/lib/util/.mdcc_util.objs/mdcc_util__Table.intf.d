lib/util/table.mli:
