lib/util/stats.ml: Array Float Hashtbl Int List Stdlib
