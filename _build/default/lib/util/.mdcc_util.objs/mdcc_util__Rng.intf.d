lib/util/rng.mli:
