(** Minimal aligned ASCII tables for the benchmark harness output.

    The harness must print "the same rows the paper reports"; this renders
    them readably on a terminal without any external dependency. *)

val render : headers:string list -> string list list -> string
(** [render ~headers rows] lays the table out with every column padded to its
    widest cell, a separator line under the header, and one row per line. *)

val print : headers:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val fms : float -> string
(** Format a latency in milliseconds with one decimal, e.g. ["277.5"]. *)

val fpct : float -> string
(** Format a fraction as a percentage with one decimal, e.g. ["12.5%"]. *)
