(** Deterministic, splittable pseudo-random number generator.

    The whole repository runs on simulated time, so reproducibility of an
    experiment reduces to reproducibility of its random choices.  This module
    implements SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny state, good
    statistical quality, and an O(1) [split] that yields an independent stream
    so that each simulated client/node can own its own generator without the
    streams interfering. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed.  Equal seeds
    give equal streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val split : t -> t
(** [split t] derives a new independent generator and advances [t]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Lognormal sample: [exp (mu + sigma * z)] for a standard normal [z].  Used
    for WAN latency jitter, whose empirical distribution is heavy-tailed. *)

val gaussian : t -> float
(** Standard normal sample (Box–Muller). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_distinct : t -> int -> int -> int list
(** [sample_distinct t k bound] draws [k] distinct integers uniformly from
    [\[0, bound)].  Requires [k <= bound]. *)
