(* bench_wire: pipelined load generator for the wire front-end.

     dune exec bench/bench_wire.exe -- --self-host --conns 4 --depth 8 --ops 2000
     dune exec bench/bench_wire.exe -- --port 11311 --conns 8 --ops 10000

   Drives [conns] client domains against an MDCC wire server — an external
   one (--addr/--port) or an in-process one booted on an ephemeral port
   (--self-host) — each keeping [depth] requests in flight on one TCP
   connection, alternating set and get over a private key slice.  After
   the measured phase every connection reads back each key it wrote with
   [gets] and checks the data equals its last acknowledged write: with
   per-connection sessions (read-your-writes) a mismatch is a server bug,
   not a benchmark artifact.

   The measurement (req/s, latency p50/p99/p999, error counts) is written
   as one JSON document (--out, default BENCH_wire.json).  Exit status 1
   if any protocol or consistency error was observed — the CI smoke job
   relies on that. *)

module Json = Mdcc_obs.Json
module Server = Mdcc_wire.Server
module Loop = Mdcc_runtime_unix.Loop

type conn_result = {
  latencies : float array;  (* seconds per request, completion order *)
  protocol_errors : int;
  consistency_errors : int;
  requests : int;
}

(* ---------------- reply reader ---------------- *)

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let read_line_cr ic = strip_cr (input_line ic)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let is_protocol_error line =
  starts_with ~prefix:"ERROR" line
  || starts_with ~prefix:"CLIENT_ERROR" line
  || starts_with ~prefix:"SERVER_ERROR" line

(* Read one reply to a [get]/[gets]: VALUE blocks then END, or an error
   line.  Returns the data of the first VALUE (None on miss/error). *)
let read_get_reply ic errors =
  let rec go first =
    let line = read_line_cr ic in
    if String.equal line "END" then first
    else if is_protocol_error line then begin
      incr errors;
      first
    end
    else
      match String.split_on_char ' ' line with
      | "VALUE" :: _key :: _flags :: bytes :: _ ->
        let n = int_of_string bytes in
        let data = really_input_string ic n in
        let _crlf = really_input_string ic 2 in
        go (if first = None then Some data else first)
      | _ ->
        incr errors;
        go first
  in
  go None

let read_store_reply ic errors =
  let line = read_line_cr ic in
  if not (String.equal line "STORED") then incr errors

(* ---------------- one client connection ---------------- *)

type op = Op_set of { key : string; data : string } | Op_get of { key : string }

let value_pad = String.make 4096 '.'

let run_conn ~addr ~port ~ops ~depth ~keys ~value_bytes conn_id =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.connect fd (ADDR_INET (Unix.inet_addr_of_string addr, port));
  (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let key i = Printf.sprintf "c%d:k%d" conn_id (i mod keys) in
  let value i =
    let stamp = Printf.sprintf "v%d.%d/" conn_id i in
    if String.length stamp >= value_bytes then stamp
    else stamp ^ String.sub value_pad 0 (value_bytes - String.length stamp)
  in
  let op_of i = if i mod 2 = 0 then Op_set { key = key i; data = value i } else Op_get { key = key i } in
  let last_write = Hashtbl.create 64 in
  let latencies = Array.make ops 0.0 in
  let errors = ref 0 in
  let inflight = Queue.create () in
  let completed = ref 0 in
  let send i =
    let op = op_of i in
    (match op with
    | Op_set { key; data } ->
      Printf.fprintf oc "set %s 0 0 %d\r\n" key (String.length data);
      output_string oc data;
      output_string oc "\r\n"
    | Op_get { key } -> Printf.fprintf oc "get %s\r\n" key);
    flush oc;
    Queue.add (op, Unix.gettimeofday ()) inflight
  in
  let complete () =
    let op, t0 = Queue.pop inflight in
    (match op with
    | Op_set { key; data } ->
      read_store_reply ic errors;
      Hashtbl.replace last_write key data
    | Op_get _ -> ignore (read_get_reply ic errors));
    latencies.(!completed) <- Unix.gettimeofday () -. t0;
    incr completed
  in
  let sent = ref 0 in
  while !completed < ops do
    while !sent < ops && Queue.length inflight < depth do
      send !sent;
      incr sent
    done;
    complete ()
  done;
  (* readback: every key this connection wrote, through the same session *)
  let consistency = ref 0 in
  let written = Hashtbl.fold (fun k v acc -> (k, v) :: acc) last_write [] in
  let written = List.sort compare written in
  List.iter
    (fun (k, expect) ->
      Printf.fprintf oc "gets %s\r\n" k;
      flush oc;
      match read_get_reply ic errors with
      | Some data when String.equal data expect -> ()
      | Some _ | None -> incr consistency)
    written;
  output_string oc "quit\r\n";
  (try flush oc with Sys_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  {
    latencies;
    protocol_errors = !errors;
    consistency_errors = !consistency;
    requests = ops + List.length written;
  }

(* ---------------- aggregation ---------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(Stdlib.min (n - 1) (int_of_float (Float.of_int n *. p)))

let doc ~params ~req_s ~wall_s ~requests ~sorted ~protocol_errors ~consistency_errors =
  let ms s = Json.Float (s *. 1000.0) in
  Json.Obj
    [
      ("schema", Json.Str "mdcc.bench_wire.v1");
      ("params", Json.Obj params);
      ("requests", Json.Int requests);
      ("wall_s", Json.Float wall_s);
      ("req_s", Json.Float req_s);
      ("latency_ms",
       Json.Obj
         [
           ("p50", ms (percentile sorted 0.50));
           ("p99", ms (percentile sorted 0.99));
           ("p999", ms (percentile sorted 0.999));
         ]);
      ("protocol_errors", Json.Int protocol_errors);
      ("consistency_errors", Json.Int consistency_errors);
    ]

let bench ~addr ~port ~self_host ~nodes ~partitions ~conns ~depth ~ops ~keys ~value_bytes ~out =
  let server =
    if not self_host then None
    else begin
      let srv = Server.create ~nodes ~partitions ~port:0 () in
      let d = Domain.spawn (fun () -> Server.run srv) in
      Some (srv, d)
    end
  in
  let port = match server with Some (srv, _) -> Server.port srv | None -> port in
  Printf.printf "bench_wire: %d conns x depth %d x %d ops -> %s:%d%s\n%!" conns depth ops
    addr port
    (if self_host then
       Printf.sprintf " (self-hosted, %d nodes x %d partitions)" nodes partitions
     else "");
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init conns (fun i ->
        Domain.spawn (fun () -> run_conn ~addr ~port ~ops ~depth ~keys ~value_bytes i))
  in
  let results = List.map Domain.join domains in
  let wall_s = Unix.gettimeofday () -. t0 in
  (match server with
  | Some (srv, d) ->
    Loop.post (Server.loop srv) (fun () ->
        Server.shutdown srv ~on_done:(fun () -> Loop.request_stop (Server.loop srv)));
    Domain.join d
  | None -> ());
  let requests = List.fold_left (fun acc r -> acc + r.requests) 0 results in
  let protocol_errors = List.fold_left (fun acc r -> acc + r.protocol_errors) 0 results in
  let consistency_errors =
    List.fold_left (fun acc r -> acc + r.consistency_errors) 0 results
  in
  let sorted = Array.concat (List.map (fun r -> r.latencies) results) in
  Array.sort Float.compare sorted;
  let req_s = Float.of_int requests /. wall_s in
  let params =
    [
      ("conns", Json.Int conns);
      ("depth", Json.Int depth);
      ("ops_per_conn", Json.Int ops);
      ("keys_per_conn", Json.Int keys);
      ("value_bytes", Json.Int value_bytes);
      ("self_host", Json.Bool self_host);
      ("nodes", Json.Int nodes);
      ("partitions", Json.Int partitions);
    ]
  in
  let json =
    doc ~params ~req_s ~wall_s ~requests ~sorted ~protocol_errors ~consistency_errors
  in
  let oc = open_out out in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "  %d requests in %.2fs = %.0f req/s  p50 %.2fms  p99 %.2fms  p99.9 %.2fms\n"
    requests wall_s req_s
    (percentile sorted 0.50 *. 1000.0)
    (percentile sorted 0.99 *. 1000.0)
    (percentile sorted 0.999 *. 1000.0);
  Printf.printf "  protocol errors: %d, readback mismatches: %d -> %s\n%!" protocol_errors
    consistency_errors out;
  if protocol_errors > 0 || consistency_errors > 0 then begin
    prerr_endline "bench_wire: FAILED (errors observed)";
    1
  end
  else 0

open Cmdliner

let addr_arg = Arg.(value & opt string "127.0.0.1" & info [ "addr" ] ~docv:"ADDR")
let port_arg = Arg.(value & opt int 11311 & info [ "port" ] ~docv:"PORT")

let self_host_arg =
  Arg.(value & flag & info [ "self-host" ] ~doc:"Boot an in-process server on an ephemeral port.")

let nodes_arg = Arg.(value & opt int 5 & info [ "nodes" ] ~docv:"N")

let partitions_arg =
  Arg.(
    value & opt int 1
    & info [ "partitions" ] ~docv:"P" ~doc:"Keyspace hash partitions of the self-hosted server.")
let conns_arg = Arg.(value & opt int 4 & info [ "conns" ] ~docv:"C")
let depth_arg = Arg.(value & opt int 8 & info [ "depth" ] ~docv:"D" ~doc:"Pipeline depth.")
let ops_arg = Arg.(value & opt int 2000 & info [ "ops" ] ~docv:"OPS" ~doc:"Ops per connection.")
let keys_arg = Arg.(value & opt int 64 & info [ "keys" ] ~docv:"K" ~doc:"Key-slice size per connection.")
let value_arg = Arg.(value & opt int 64 & info [ "value-bytes" ] ~docv:"B")
let out_arg = Arg.(value & opt string "BENCH_wire.json" & info [ "out" ] ~docv:"FILE")

let cmd =
  let run addr port self_host nodes partitions conns depth ops keys value_bytes out =
    bench ~addr ~port ~self_host ~nodes ~partitions ~conns ~depth ~ops ~keys ~value_bytes ~out
  in
  Cmd.v
    (Cmd.info "bench_wire" ~doc:"Pipelined load generator for the MDCC wire front-end")
    Term.(
      const run $ addr_arg $ port_arg $ self_host_arg $ nodes_arg $ partitions_arg $ conns_arg
      $ depth_arg $ ops_arg $ keys_arg $ value_arg $ out_arg)

let () = exit (Cmd.eval' cmd)
