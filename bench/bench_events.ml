(* Micro-benchmark of the simulation hot loop: raw Event_queue ops,
   Engine.run dispatch, and Network.send delivery throughput.

     dune exec bench/bench_events.exe -- --ops 300000
     dune exec bench/bench_events.exe -- --out BENCH_events.json

   Four sections, each timed in isolation:

   - queue_push_pop:   push N events at pseudo-random times, pop them all
   - queue_cancel:     push N, cancel every other handle (exercising the
                       compaction path), drain the rest
   - engine_dispatch:  K self-rescheduling timers executing N events total
                       through Engine.run — the sweep's inner loop
   - network_send:     ping-pong handlers over a 2-DC topology delivering
                       N messages end to end (send + schedule + deliver)

   Wall-clock throughput (ops/s) is machine-dependent and noisy on a
   shared container; the per-op minor-allocation figure (minor_words/op,
   from Gc.minor_words) is deterministic for a given build and is the
   number the hot-loop allocation-purge work is judged by.  Output schema
   mdcc.bench_events.v1; CI uploads the artifact so sequential hot-loop
   regressions are visible independently of the parallel-sweep story. *)

module Engine = Mdcc_sim.Engine
module Event_queue = Mdcc_sim.Event_queue
module Network = Mdcc_sim.Network
module Topology = Mdcc_sim.Topology
module Rng = Mdcc_util.Rng
module Json = Mdcc_obs.Json

type section = {
  s_name : string;
  s_ops : int;
  s_wall_s : float;
  s_ops_per_s : float;
  s_minor_words_per_op : float;
}

let time_section name ops f =
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  f ();
  let wall_s = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. w0 in
  {
    s_name = name;
    s_ops = ops;
    s_wall_s = wall_s;
    s_ops_per_s = Float.of_int ops /. wall_s;
    s_minor_words_per_op = words /. Float.of_int ops;
  }

(* ------------------------------------------------------------------ *)
(* Sections                                                            *)
(* ------------------------------------------------------------------ *)

let queue_push_pop ~ops =
  let q = Event_queue.create () in
  let rng = Rng.create 42 in
  let n = ops / 2 in
  let ats = Array.init n (fun _ -> Rng.float rng 1_000_000.0) in
  time_section "queue_push_pop" ops (fun () ->
      for i = 0 to n - 1 do
        ignore (Event_queue.push q ~at:ats.(i) ~seq:i ignore)
      done;
      for _ = 1 to n do
        ignore (Event_queue.pop q)
      done)

let queue_cancel ~ops =
  let q = Event_queue.create () in
  let rng = Rng.create 43 in
  let n = ops / 3 in
  let ats = Array.init n (fun _ -> Rng.float rng 1_000_000.0) in
  (* push N + cancel N/2 + pop N/2 ~= ops individual operations *)
  time_section "queue_cancel" ops (fun () ->
      let handles =
        Array.init n (fun i -> Event_queue.push q ~at:ats.(i) ~seq:i ignore)
      in
      for i = 0 to n - 1 do
        if i land 1 = 0 then Event_queue.cancel q handles.(i)
      done;
      while Event_queue.pop q <> None do
        ()
      done)

let engine_dispatch ~ops =
  let engine = Engine.create ~seed:7 in
  let timers = 64 in
  let fired = ref 0 in
  let rec tick () =
    incr fired;
    if !fired + timers <= ops then ignore (Engine.schedule engine ~after:1.0 tick)
  in
  for _ = 1 to timers do
    ignore (Engine.schedule engine ~after:1.0 tick)
  done;
  time_section "engine_dispatch" ops (fun () -> Engine.run engine)

type Network.payload += Ping

let network_send ~ops =
  let engine = Engine.create ~seed:11 in
  let topo =
    Topology.make ~dc_names:[| "a"; "b" |]
      ~rtt:[| [| 0.0; 20.0 |]; [| 20.0; 0.0 |] |]
      ~nodes_per_dc:2 ()
  in
  let net = Network.create engine topo () in
  let delivered = ref 0 in
  (* Ping-pong: every delivery sends one message back until the budget is
     spent, so the section measures send + schedule + deliver end to end. *)
  for node = 0 to 3 do
    Network.register net node (fun ~src payload ->
        incr delivered;
        if !delivered < ops then Network.send net ~src:node ~dst:src payload)
  done;
  (* 8 concurrent ping-pong chains keep the heap non-trivial. *)
  let seed_msgs = 8 in
  time_section "network_send" ops (fun () ->
      for i = 0 to seed_msgs - 1 do
        Network.send net ~src:(i land 3) ~dst:(i land 3 lxor 2) Ping
      done;
      Engine.run engine)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let section_json s =
  ( s.s_name,
    Json.Obj
      [
        ("ops", Json.Int s.s_ops);
        ("wall_s", Json.Float s.s_wall_s);
        ("ops_per_s", Json.Float s.s_ops_per_s);
        ("minor_words_per_op", Json.Float s.s_minor_words_per_op);
      ] )

let doc ~ops sections =
  Json.Obj
    [
      ("schema", Json.Str "mdcc.bench_events.v1");
      ("config", Json.Obj [ ("ops", Json.Int ops) ]);
      ("sections", Json.Obj (List.map section_json sections));
    ]

let bench ~ops ~out =
  Printf.printf "bench-events: %d ops per section\n%!" ops;
  let sections =
    [
      queue_push_pop ~ops;
      queue_cancel ~ops;
      engine_dispatch ~ops;
      network_send ~ops;
    ]
  in
  List.iter
    (fun s ->
      Printf.printf "  %-16s %8.3f s  %10.0f ops/s  %6.2f minor words/op\n" s.s_name
        s.s_wall_s s.s_ops_per_s s.s_minor_words_per_op)
    sections;
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (Json.to_string (doc ~ops sections));
      output_char oc '\n';
      close_out oc;
      Printf.printf "  written: %s\n" path)
    out

open Cmdliner

let ops_arg =
  Arg.(value & opt int 300_000 & info [ "ops" ] ~docv:"N" ~doc:"Operations per section.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Write the measurement as JSON (schema mdcc.bench_events.v1).")

let () =
  let doc = "micro-benchmark of the DES hot loop: event queue, dispatch, network send" in
  let cmd =
    Cmd.v
      (Cmd.info "bench-events" ~doc)
      Term.(const (fun ops out -> bench ~ops ~out) $ ops_arg $ out_arg)
  in
  exit (Cmd.eval cmd)
