(* The benchmark harness.

     dune exec bench/main.exe                 -- reproduce every figure/table
     dune exec bench/main.exe -- --quick      -- reduced scale (CI-sized)
     dune exec bench/main.exe -- fig3 fig8    -- selected experiments only
     dune exec bench/main.exe -- --bechamel   -- Bechamel micro-benchmarks of
                                                 the protocol-critical paths
     dune exec bench/main.exe -- --jobs 4     -- fan independent simulations
                                                 out over 4 worker domains

   Experiment ids: fig3 fig4 fig5 fig6 fig7 fig8 gamma (see DESIGN.md §4 and
   EXPERIMENTS.md for the paper-vs-measured record). *)

module Experiments = Mdcc_workload.Experiments

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per protocol-critical data structure. *)
(* ------------------------------------------------------------------ *)

module Bench_micro = struct
  open Bechamel
  open Toolkit

  module Cmd = struct
    type t = { id : string; commutes : bool }

    let id c = c.id

    let commutes a b = a.commutes && b.commutes
  end

  module C = Mdcc_paxos.Cstruct.Make (Cmd)

  let cstruct_append =
    Test.make ~name:"cstruct append+leq (8 cmds)"
      (Staged.stage (fun () ->
           let base =
             List.fold_left C.append C.empty
               (List.init 8 (fun i -> { Cmd.id = string_of_int i; commutes = i mod 2 = 0 }))
           in
           ignore (C.leq base (C.append base { Cmd.id = "x"; commutes = true }))))

  let quorum_safe_value =
    let votes =
      List.init 3 (fun i ->
          {
            Mdcc_paxos.Quorum.acceptor = i;
            ballot = Mdcc_paxos.Ballot.initial_fast;
            value = (if i = 1 then "b" else "a");
          })
    in
    Test.make ~name:"quorum safe_value (n=5)"
      (Staged.stage (fun () ->
           ignore (Mdcc_paxos.Quorum.safe_value ~n:5 ~quorum_size:3 ~equal:String.equal votes)))

  let event_heap =
    Test.make ~name:"event heap push+pop (64)"
      (Staged.stage (fun () ->
           let q = Mdcc_sim.Event_queue.create () in
           for i = 1 to 64 do
             ignore
               (Mdcc_sim.Event_queue.push q
                  ~at:(Float.of_int ((i * 7919) mod 101))
                  ~seq:i ignore)
           done;
           let rec drain () =
             match Mdcc_sim.Event_queue.pop q with Some _ -> drain () | None -> ()
           in
           drain ()))

  let store_apply =
    let schema =
      Mdcc_storage.Schema.create
        [ { Mdcc_storage.Schema.name = "t"; bounds = []; master_dc = 0 } ]
    in
    let key = Mdcc_storage.Key.make ~table:"t" ~id:"k" in
    Test.make ~name:"store delta apply (16)"
      (Staged.stage (fun () ->
           let store = Mdcc_storage.Store.create schema in
           Mdcc_storage.Store.apply store key (Mdcc_storage.Update.Insert Mdcc_storage.Value.empty);
           for _ = 1 to 16 do
             Mdcc_storage.Store.apply store key (Mdcc_storage.Update.Delta [ ("x", 1) ])
           done))

  let demarcation =
    let bounds = [ { Mdcc_storage.Schema.attr = "stock"; lower = Some 0; upper = None } ] in
    let valuation =
      {
        Mdcc_core.Rstate.value = Mdcc_storage.Value.of_list [ ("stock", Mdcc_storage.Value.Int 50) ];
        version = 1;
        exists = true;
      }
    in
    Test.make ~name:"rstate evaluate (demarcation)"
      (Staged.stage (fun () ->
           ignore
             (Mdcc_core.Rstate.evaluate ~bounds ~demarcation:(`Quorum (5, 4)) valuation
                ~accepted:[]
                (Mdcc_storage.Update.Delta [ ("stock", -3) ]))))

  let run () =
    let tests = [ cstruct_append; quorum_safe_value; event_heap; store_apply; demarcation ] in
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    List.iter
      (fun test ->
        let results = Benchmark.all cfg instances test in
        Hashtbl.iter
          (fun name raws ->
            let stats =
              Analyze.one
                (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
                Instance.monotonic_clock raws
            in
            match Analyze.OLS.estimates stats with
            | Some [ est ] -> Printf.printf "  %-34s %10.1f ns/run\n%!" name est
            | Some _ | None -> Printf.printf "  %-34s (no estimate)\n%!" name)
          results)
      tests
end

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let bechamel = List.mem "--bechamel" args in
  (* Pull `--jobs N` out before treating the remaining bare words as ids. *)
  let jobs, args =
    let rec strip acc = function
      | "--jobs" :: n :: rest -> (int_of_string_opt n, List.rev_append acc rest)
      | a :: rest -> strip (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    let jobs, rest = strip [] args in
    (Option.value jobs ~default:(Mdcc_util.Pool.default_jobs ()), rest)
  in
  let selected = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  let run_experiment ~pool = function
    | "fig3" -> ignore (Experiments.fig3 ~quick ~pool ())
    | "fig4" -> ignore (Experiments.fig4 ~quick ~pool ())
    | "fig5" -> ignore (Experiments.fig5 ~quick ~pool ())
    | "fig6" -> ignore (Experiments.fig6 ~quick ~pool ())
    | "fig7" -> ignore (Experiments.fig7 ~quick ~pool ())
    | "fig8" -> ignore (Experiments.fig8 ~quick ~pool ())
    | "gamma" -> ignore (Experiments.ablation_gamma ~quick ~pool ())
    | "batching" -> ignore (Experiments.ablation_batching ~quick ~pool ())
    | "replication" -> ignore (Experiments.ablation_replication ~quick ~pool ())
    | other -> Printf.eprintf "unknown experiment %S (try fig3..fig8, gamma, batching)\n" other
  in
  if bechamel then begin
    print_endline "== Bechamel micro-benchmarks of protocol-critical paths ==";
    Bench_micro.run ()
  end;
  Mdcc_util.Pool.with_pool ~jobs (fun pool ->
      match selected with
      | [] -> if not bechamel then Experiments.run_all ~quick ~pool ()
      | ids -> List.iter (run_experiment ~pool) ids);
  (* Aggregate protocol metrics of everything the run executed — every
     cluster built above reported into the ambient registry. *)
  let metrics_path = "bench_metrics.json" in
  let oc = open_out metrics_path in
  output_string oc
    (Mdcc_obs.Json.to_string (Mdcc_obs.Obs.metrics_json (Mdcc_obs.Obs.ambient ())));
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nbench: done (metrics in %s).\n" metrics_path
