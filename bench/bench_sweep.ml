(* Wall-clock benchmark of the parallel chaos sweep.

     dune exec bench/bench_sweep.exe -- --seeds 50 --jobs 4
     dune exec bench/bench_sweep.exe -- --out BENCH_sweep.json
     dune exec bench/bench_sweep.exe -- --check BENCH_sweep.json --tolerance 0.2

   Runs the full scenario-matrix sweep twice — sequentially (--jobs 1) and
   on a worker pool (--jobs N) — on identical spec lists, then:

   - verifies the two runs' report JSON and obs documents are byte-identical
     (the determinism contract; exit 2 on any divergence),
   - reports runs/sec and events/sec for both modes plus the speedup,
   - optionally writes the measurement to a JSON file (--out),
   - optionally compares against a checked-in baseline (--check), failing
     (exit 3) when the speedup regresses by more than --tolerance, or when
     --min-speedup is not reached.

   The regression guard compares *speedup* rather than absolute throughput
   by default: speedup is a ratio of two runs on the same machine, so the
   checked-in baseline transfers across machine classes.  Absolute
   throughput comparison is opt-in via --absolute. *)

module Sweep = Mdcc_chaos.Sweep
module Nemesis = Mdcc_chaos.Nemesis
module Runner = Mdcc_chaos.Runner
module Json = Mdcc_obs.Json
module Prof = Mdcc_obs.Prof

type measurement = { wall_s : float; runs_per_s : float; events_per_s : float }

let measure ~jobs ?chunk specs =
  let t0 = Unix.gettimeofday () in
  let reports = Sweep.run ~jobs ?chunk specs in
  let wall_s = Unix.gettimeofday () -. t0 in
  let events = List.fold_left (fun acc r -> acc + r.Runner.r_events) 0 reports in
  let n = List.length reports in
  ( reports,
    {
      wall_s;
      runs_per_s = Float.of_int n /. wall_s;
      events_per_s = Float.of_int events /. wall_s;
    } )

(* One canonical string for a whole sweep: every per-run report plus the
   full obs export.  Byte equality of this string is the contract. *)
let render reports =
  String.concat "\n" (List.map Runner.report_to_json reports)
  ^ "\n"
  ^ Json.to_string (Sweep.obs_doc reports)

let measurement_json m =
  Json.Obj
    [
      ("wall_s", Json.Float m.wall_s);
      ("runs_per_s", Json.Float m.runs_per_s);
      ("events_per_s", Json.Float m.events_per_s);
    ]

(* [cores] is recorded so a checker can tell whether the speedup number
   means anything: a parallel leg measured with fewer cores than domains
   is time-slicing, and its "speedup" says nothing about the code. *)
let doc ~seeds ~scenarios ~runs ~jobs ~cores ~seq ~par ~speedup =
  Json.Obj
    [
      ("schema", Json.Str "mdcc.bench_sweep.v1");
      ( "config",
        Json.Obj
          [
            ("seeds", Json.Int seeds);
            ("scenarios", Json.Int scenarios);
            ("runs", Json.Int runs);
            ("jobs", Json.Int jobs);
            ("cores", Json.Int cores);
          ] );
      ("sequential", measurement_json seq);
      ("parallel", measurement_json par);
      ("speedup", Json.Float speedup);
    ]

(* --profile: run each leg once more under the per-domain profiler and
   write the attribution artifact.  The profiled legs are separate runs —
   the measured legs above stay un-instrumented, and the profile rides
   its own file (wall-clock numbers are nondeterministic, so they must
   never share a channel with byte-pinned outputs). *)
let profile_side ~jobs ?chunk specs =
  let t0 = Unix.gettimeofday () in
  let _reports, snapshot = Sweep.run_profiled ~jobs ?chunk specs in
  let wall_s = Unix.gettimeofday () -. t0 in
  (wall_s, snapshot)

let profile_side_json (wall_s, snapshot) =
  let attributed_ms = Prof.attributed_ms snapshot in
  Json.Obj
    [
      ("wall_s", Json.Float wall_s);
      ("attributed_ms", Json.Float attributed_ms);
      (* For the sequential leg this is the share of the leg's wall time
         the named phases explain (the >= 0.95 acceptance bar); for a
         parallel leg phase time sums across domains, so the "fraction"
         is effectively worker-domain utilization and may exceed 1. *)
      ("attributed_fraction", Json.Float (attributed_ms /. (wall_s *. 1000.0)));
      ("profile", Prof.snapshot_to_json snapshot);
    ]

let profile_doc ~seeds ~scenarios ~runs ~jobs ~cores ~seq_side ~par_side =
  Json.Obj
    [
      ("schema", Json.Str "mdcc.bench_profile.v1");
      ( "config",
        Json.Obj
          [
            ("seeds", Json.Int seeds);
            ("scenarios", Json.Int scenarios);
            ("runs", Json.Int runs);
            ("jobs", Json.Int jobs);
            ("cores", Json.Int cores);
          ] );
      ("sequential", profile_side_json seq_side);
      ("parallel", profile_side_json par_side);
    ]

let get_float path j =
  let rec go j = function
    | [] -> (match j with Json.Float f -> Some f | Json.Int i -> Some (Float.of_int i) | _ -> None)
    | name :: rest -> Option.bind (Json.member name j) (fun j -> go j rest)
  in
  go j path

(* Speedup checks are gated on the measurement actually meaning something:
   [jobs] domains on fewer than [jobs] cores just time-slice one core, and
   the resulting ratio measures the scheduler, not this code.  The gate is
   applied to each side independently — the current measurement (skip the
   floor and the regression check, loudly) and the baseline (a baseline
   recorded on a starved machine has a meaningless speedup; skip only the
   relative comparison).  Baselines predating the [cores] field are
   trusted, i.e. assumed recorded with enough cores. *)
let check_baseline ~path ~tolerance ~absolute ~speedup ~speedup_meaningful ~par =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  match Json.parse contents with
  | Error msg ->
    Printf.eprintf "bench-sweep: cannot parse baseline %s: %s\n" path msg;
    exit 3
  | Ok baseline ->
    let fail what base now =
      Printf.eprintf
        "bench-sweep: %s regressed beyond tolerance %.0f%%: baseline %.3f, now %.3f\n" what
        (tolerance *. 100.0) base now;
      exit 3
    in
    let baseline_meaningful =
      match (get_float [ "config"; "cores" ] baseline, get_float [ "config"; "jobs" ] baseline)
      with
      | Some cores, Some jobs -> cores >= jobs
      | _ -> true
    in
    (if not speedup_meaningful then
       Printf.printf
         "check: SKIPPING speedup regression check (this machine has fewer cores than \
          --jobs; the measured ratio is time-slicing, not parallelism)\n"
     else if not baseline_meaningful then
       Printf.printf
         "check: SKIPPING speedup regression check (baseline %s was recorded with fewer \
          cores than jobs; its speedup is not comparable)\n" path
     else
       match get_float [ "speedup" ] baseline with
       | Some base when base > 0.0 ->
         if speedup < base *. (1.0 -. tolerance) then fail "speedup" base speedup
         else
           Printf.printf "check: speedup %.2fx vs baseline %.2fx (tolerance %.0f%%): ok\n"
             speedup base (tolerance *. 100.0)
       | Some _ | None -> Printf.eprintf "bench-sweep: baseline %s has no speedup field\n" path);
    if absolute then
      match get_float [ "parallel"; "runs_per_s" ] baseline with
      | Some base when base > 0.0 ->
        if par.runs_per_s < base *. (1.0 -. tolerance) then
          fail "parallel runs/sec" base par.runs_per_s
        else
          Printf.printf "check: %.1f runs/s vs baseline %.1f runs/s: ok\n" par.runs_per_s base
      | Some _ | None ->
        Printf.eprintf "bench-sweep: baseline %s has no parallel.runs_per_s field\n" path

let bench ~seeds ~jobs ~chunk ~out ~check ~tolerance ~min_speedup ~absolute ~profile =
  let scenarios = Nemesis.matrix in
  let specs = Sweep.specs ~seeds ~scenarios () in
  let runs = List.length specs in
  let cores = Domain.recommended_domain_count () in
  let speedup_meaningful = cores >= jobs in
  Printf.printf "bench-sweep: %d runs (%d seeds x %d scenarios), %d cores detected\n%!" runs
    seeds (List.length scenarios) cores;
  if not speedup_meaningful then
    Printf.printf
      "  WARNING: %d cores < %d jobs — the parallel leg will time-slice; speedup \
       assertions are skipped\n%!" cores jobs;
  let seq_reports, seq = measure ~jobs:1 specs in
  Printf.printf "  sequential: %6.2f s  %7.1f runs/s  %9.0f events/s\n%!" seq.wall_s
    seq.runs_per_s seq.events_per_s;
  let par_reports, par = measure ~jobs ?chunk specs in
  Printf.printf "  jobs=%-4d   %6.2f s  %7.1f runs/s  %9.0f events/s\n%!" jobs par.wall_s
    par.runs_per_s par.events_per_s;
  if not (String.equal (render seq_reports) (render par_reports)) then begin
    Printf.eprintf
      "bench-sweep: FATAL: parallel sweep output differs from sequential (determinism \
       contract broken)\n";
    exit 2
  end;
  Printf.printf "  output: byte-identical across modes\n";
  let speedup = seq.wall_s /. par.wall_s in
  Printf.printf "  speedup: %.2fx\n" speedup;
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc
        (Json.to_string
           (doc ~seeds ~scenarios:(List.length scenarios) ~runs ~jobs ~cores ~seq ~par
              ~speedup));
      output_char oc '\n';
      close_out oc;
      Printf.printf "  written: %s\n" path)
    out;
  Option.iter
    (fun path ->
      Printf.printf "  profiling sequential leg...\n%!";
      let seq_side = profile_side ~jobs:1 specs in
      Printf.printf "  profiling jobs=%d leg...\n%!" jobs;
      let par_side = profile_side ~jobs ?chunk specs in
      let oc = open_out path in
      output_string oc
        (Json.to_string
           (profile_doc ~seeds ~scenarios:(List.length scenarios) ~runs ~jobs ~cores
              ~seq_side ~par_side));
      output_char oc '\n';
      close_out oc;
      let frac (wall_s, snap) = Prof.attributed_ms snap /. (wall_s *. 1000.0) in
      Printf.printf "  profile: attributed %.0f%% (seq) / %.0f%% (jobs=%d) of wall; %s\n"
        (100.0 *. frac seq_side) (100.0 *. frac par_side) jobs path)
    profile;
  Option.iter
    (fun path -> check_baseline ~path ~tolerance ~absolute ~speedup ~speedup_meaningful ~par)
    check;
  Option.iter
    (fun floor ->
      if not speedup_meaningful then
        Printf.printf
          "  SKIPPING --min-speedup %.2f floor (%d cores < %d jobs: the ratio measures \
           time-slicing, not parallelism)\n" floor cores jobs
      else if speedup < floor then begin
        Printf.eprintf "bench-sweep: speedup %.2fx below required %.2fx\n" speedup floor;
        exit 3
      end
      else Printf.printf "  min-speedup: %.2fx >= %.2fx: ok\n" speedup floor)
    min_speedup

open Cmdliner

let seeds_arg = Arg.(value & opt int 50 & info [ "seeds" ] ~docv:"N" ~doc:"Seeds per scenario.")

let jobs_arg =
  Arg.(
    value
    & opt int (Mdcc_util.Pool.default_jobs ())
    & info [ "jobs" ] ~docv:"N" ~doc:"Worker domains for the parallel leg.")

let chunk_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chunk" ] ~docv:"N"
        ~doc:
          "Specs claimed per work-stealing cursor bump in the parallel leg (default: about \
           eight claims per domain).  Output is byte-identical for every value.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Write the measurement as JSON (schema mdcc.bench_sweep.v1).")

let check_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "check" ] ~docv:"BASELINE"
        ~doc:"Compare against a baseline measurement; exit 3 on regression.")

let tolerance_arg =
  Arg.(
    value & opt float 0.2
    & info [ "tolerance" ] ~docv:"FRAC" ~doc:"Allowed relative regression (default 0.2 = 20%).")

let min_speedup_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "min-speedup" ] ~docv:"X" ~doc:"Require at least this speedup over --jobs 1.")

let absolute_flag =
  Arg.(
    value & flag
    & info [ "absolute" ]
        ~doc:
          "Also compare absolute runs/sec against the baseline (off by default: wall-clock \
           throughput does not transfer across machine classes; speedup does).")

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Re-run both legs under the hot-path profiler and write the attribution artifact \
           (schema mdcc.bench_profile.v1: per-phase wall/alloc breakdown, sequential vs \
           --jobs N side by side) to $(docv).  The measured legs above stay un-instrumented.")

let () =
  let doc = "wall-clock benchmark and regression guard for the parallel chaos sweep" in
  let run seeds jobs chunk out check tolerance min_speedup absolute profile =
    bench ~seeds ~jobs ~chunk ~out ~check ~tolerance ~min_speedup ~absolute ~profile
  in
  let cmd =
    Cmd.v
      (Cmd.info "bench-sweep" ~doc)
      Term.(
        const run $ seeds_arg $ jobs_arg $ chunk_arg $ out_arg $ check_arg $ tolerance_arg
        $ min_speedup_arg $ absolute_flag $ profile_arg)
  in
  exit (Cmd.eval cmd)
