(* The sharded Figure-4-style throughput bench.

     dune exec bench/bench_shard.exe -- --out BENCH_shard.json
     dune exec bench/bench_shard.exe -- --partitions 16 --clients 400 --items 40000

   Runs the TPC-W write workload over the full MDCC protocol on a
   multi-partition deployment — a scale-out series doubling the partition
   count (and the closed-loop client population with it) up to
   --partitions, all against the same --items keyspace — and reports
   committed transactions per second with p50/p99 commit latency per
   point.  This is Figure 4's methodology at a 10x larger keyspace than
   the quick experiment tier (800 items), with the keyspace hash-sharded
   across per-partition replica groups instead of one group holding
   everything.

   The optional JSON artifact (schema mdcc.bench_shard.v1) is the CI
   hand-off: bench-smoke uploads it so a scale-out regression is visible
   per commit. *)

module Stats = Mdcc_util.Stats
module Rng = Mdcc_util.Rng
module Obs = Mdcc_obs.Obs
module Json = Mdcc_obs.Json
module Setup = Mdcc_workload.Setup
module Tpcw = Mdcc_workload.Tpcw
module Runner = Mdcc_workload.Runner
module Metrics = Mdcc_workload.Metrics

type point = {
  pt_partitions : int;
  pt_clients : int;
  pt_tps : float;
  pt_p50 : float;
  pt_p99 : float;
  pt_committed : int;
  pt_aborted : int;
  pt_wall_s : float;
}

let even_spread ~num_dcs clients =
  let base = clients / num_dcs and extra = clients mod num_dcs in
  Array.init num_dcs (fun dc -> base + if dc < extra then 1 else 0)

let run_point ~seed ~items ~warmup ~duration ~drain ~partitions ~clients =
  let t0 = Unix.gettimeofday () in
  let rng = Rng.create ((seed * 17) + 3) in
  let p = { Tpcw.default with items; commutative = true } in
  let rows = Tpcw.rows p ~rng in
  let harness =
    Setup.make Setup.Mdcc ~seed ~schema:Tpcw.schema ~partitions ~obs:(Obs.create ()) ~rows ()
  in
  let spec =
    { Runner.clients_per_dc = even_spread ~num_dcs:5 clients; warmup; duration; drain; seed }
  in
  let metrics = Runner.run harness (Tpcw.generator p) spec in
  let p50, p99 =
    match Metrics.summary metrics with
    | Some s -> (s.Stats.p50, s.Stats.p99)
    | None -> (0.0, 0.0)
  in
  {
    pt_partitions = partitions;
    pt_clients = clients;
    pt_tps = Metrics.throughput metrics ~duration;
    pt_p50 = p50;
    pt_p99 = p99;
    pt_committed = Metrics.commit_count metrics;
    pt_aborted = Metrics.abort_count metrics;
    pt_wall_s = Unix.gettimeofday () -. t0;
  }

(* The scale-out series: partition counts doubling up to [partitions],
   clients growing proportionally so per-partition load stays constant
   (Figure 4 grows the offered load with the deployment). *)
let series ~partitions ~clients =
  let rec doublings p acc = if p >= partitions then List.rev (partitions :: acc) else doublings (p * 2) (p :: acc) in
  let ps = match doublings 1 [] with [ 1 ] -> [ 1 ] | 1 :: rest -> rest | ps -> ps in
  List.map (fun p -> (p, max 1 (clients * p / partitions))) ps

let point_json pt =
  Json.Obj
    [
      ("partitions", Json.Int pt.pt_partitions);
      ("clients", Json.Int pt.pt_clients);
      ("txns_per_s", Json.Float pt.pt_tps);
      ("p50_ms", Json.Float pt.pt_p50);
      ("p99_ms", Json.Float pt.pt_p99);
      ("committed", Json.Int pt.pt_committed);
      ("aborted", Json.Int pt.pt_aborted);
      ("wall_s", Json.Float pt.pt_wall_s);
    ]

let doc ~seed ~items ~warmup ~duration ~partitions ~clients points =
  Json.Obj
    [
      ("schema", Json.Str "mdcc.bench_shard.v1");
      ( "config",
        Json.Obj
          [
            ("items", Json.Int items);
            ("clients", Json.Int clients);
            ("partitions", Json.Int partitions);
            ("warmup_ms", Json.Float warmup);
            ("duration_ms", Json.Float duration);
            ("seed", Json.Int seed);
          ] );
      ("points", Json.List (List.map point_json points));
    ]

let bench ~seed ~items ~warmup ~duration ~drain ~partitions ~clients ~out =
  let pts = series ~partitions ~clients in
  Printf.printf "bench-shard: %d items, %d points up to %d partitions / %d clients\n%!" items
    (List.length pts) partitions clients;
  let points =
    List.map
      (fun (p, c) ->
        let pt = run_point ~seed ~items ~warmup ~duration ~drain ~partitions:p ~clients:c in
        Printf.printf
          "  partitions=%-3d clients=%-4d  %8.1f txns/s  p50 %6.0f ms  p99 %6.0f ms  (%d c / %d a, %.1f s wall)\n%!"
          p c pt.pt_tps pt.pt_p50 pt.pt_p99 pt.pt_committed pt.pt_aborted pt.pt_wall_s;
        pt)
      pts
  in
  (match points with
  | first :: (_ :: _ as rest) ->
    let last = List.nth rest (List.length rest - 1) in
    if last.pt_tps > first.pt_tps then
      Printf.printf "  scale-out: %.2fx throughput from %d to %d partitions\n"
        (last.pt_tps /. first.pt_tps) first.pt_partitions last.pt_partitions
  | _ -> ());
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc
        (Json.to_string (doc ~seed ~items ~warmup ~duration ~partitions ~clients points));
      output_char oc '\n';
      close_out oc;
      Printf.printf "  written: %s\n" path)
    out

open Cmdliner

let seed_arg = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.")

let items_arg =
  Arg.(value & opt int 8_000 & info [ "items" ] ~docv:"N" ~doc:"TPC-W items (the keyspace).")

let clients_arg =
  Arg.(
    value & opt int 200
    & info [ "clients" ] ~docv:"N" ~doc:"Closed-loop clients at the largest point.")

let partitions_arg =
  Arg.(
    value & opt int 8
    & info [ "partitions" ] ~docv:"N" ~doc:"Largest partition count of the scale-out series.")

let warmup_arg =
  Arg.(value & opt float 2_000.0 & info [ "warmup" ] ~docv:"MS" ~doc:"Warm-up window (sim ms).")

let duration_arg =
  Arg.(
    value & opt float 8_000.0 & info [ "duration" ] ~docv:"MS" ~doc:"Measured window (sim ms).")

let drain_arg =
  Arg.(value & opt float 20_000.0 & info [ "drain" ] ~docv:"MS" ~doc:"Drain window (sim ms).")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Write the series as JSON (schema mdcc.bench_shard.v1).")

let () =
  let doc = "TPC-W throughput scale-out across keyspace partitions (Figure-4 style)" in
  let run seed items clients partitions warmup duration drain out =
    bench ~seed ~items ~warmup ~duration ~drain ~partitions ~clients ~out
  in
  let cmd =
    Cmd.v
      (Cmd.info "bench-shard" ~doc)
      Term.(
        const run $ seed_arg $ items_arg $ clients_arg $ partitions_arg $ warmup_arg
        $ duration_arg $ drain_arg $ out_arg)
  in
  exit (Cmd.eval cmd)
